package harness

// Merge-correctness differentials for the serving front-end: merging
// compatible requests into one transaction (tm.Batcher) may change how
// many transactions run and which barriers fire, but never what the
// requests compute. A single worker over a deterministic request
// stream must therefore leave a bit-identical address space and return
// bit-identical replies whatever the merge width and whatever the
// optimization profile.
//
// The differential configs are chosen so the final state is genuinely
// comparable across transaction groupings: no deletes, no version
// trims, and no ring-overflow drops. Those paths free blocks owned by
// *earlier* transactions, and commit-time frees recycle through limbo
// lists whose timing depends on the commit sequence — a real but
// benign allocation-placement difference that would drown the signal
// the checksum is after (a wrongly elided barrier corrupting data).
// Same-transaction staging frees reclaim immediately and stay exactly
// reproducible. Per-thread stacks are zeroed before the checksum: a
// merged transaction's reply buffer legitimately leaves different
// stack residue than per-request transactions do.

import (
	"sync"
	"testing"

	"repro/internal/scenarios/tmkv"
	"repro/internal/scenarios/tmmsg"
	"repro/tm"
	"repro/tm/serve"
)

// diffRequests is the stream length of the single-worker differentials.
const diffRequests = 256

// diffKVConfig is the deletion-free, trim-free tmkv mix (see the file
// comment for why). MaxVersions exceeds the longest chain any key can
// grow — every request updating the same key, plus its preload — so
// trimming never fires; memConfig reserves that worst case per key,
// which is why the bound is tight rather than astronomical.
func diffKVConfig() tmkv.Config {
	return tmkv.Config{Name: "diff-kv", Keys: 256,
		KeyWords: 3, MinBlocks: 1, MaxBlocks: 3, MaxVersions: diffRequests + 64,
		ReadPct: 50, UpdatePct: 30, InsertPct: 15, DeletePct: 0, ScanPct: 5,
		ScanLimit: 8, Zipf: true, Theta: 0.85, PreloadPct: 50, Seed: 1}
}

// diffMsgConfig is the drop-free tmmsg mix: RingCap absorbs the preload
// plus every message the run could publish, even if the Zipfian stream
// lands all of them on one topic.
func diffMsgConfig(requests int) tmmsg.Config {
	return tmmsg.Config{Name: "diff-msg", Topics: 16,
		KeyWords: 3, RingCap: 8 + requests*3, Groups: 2, MinBlocks: 1, MaxBlocks: 3,
		PublishPct: 40, ConsumePct: 30, AckPct: 20, LagPct: 10,
		MaxBatch: 3, ConsumeMax: 6, AckMax: 6, ScanLimit: 8,
		Zipf: true, Theta: 0.85, PreloadMsgs: 8, Seed: 1}
}

// servedRun is the comparable outcome of one served request stream.
type servedRun struct {
	checksum uint64
	replies  [][]uint64
	stats    tm.BatchStats
}

// runServed executes requests 0..n-1 of the backend's deterministic
// stream through a server and returns the final-state fingerprint, the
// per-request replies, and the merge counters. All requests are queued
// before the workers start, so batch composition — and with it the
// merge ratio — is reproducible at one worker.
func runServed(t *testing.T, be serve.Backend, p tm.Profile, workers, width, requests int, seed uint64) servedRun {
	t.Helper()
	run, _ := runServedCfg(t, be, serve.Config{
		Workers: workers, MergeWidth: width,
		QueueDepth: requests, Requests: requests,
		Options: p.Options(),
	}, requests, seed)
	return run
}

// runServedCfg is runServed under an explicit server configuration; it
// also returns the stopped server, so differentials can interrogate the
// runtime (engine selections, widths) behind the fingerprint.
func runServedCfg(t *testing.T, be serve.Backend, cfg serve.Config, requests int, seed uint64) (servedRun, *serve.Server) {
	t.Helper()
	srv := serve.NewServer(be, cfg)
	replies := make([][]uint64, requests)
	aborted := make([]bool, requests)
	var wg sync.WaitGroup
	wg.Add(requests)
	for i := 0; i < requests; i++ {
		idx := i
		err := srv.SubmitRequest(be.NewRequest(seed, uint64(i)), func(rep serve.Reply) {
			replies[idx] = rep.Words
			aborted[idx] = rep.Aborted
			wg.Done()
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	srv.Start()
	srv.Stop()
	wg.Wait()
	rt := srv.Runtime()
	rt.Validate() // no orec may stay locked after the pool joined
	for i := range aborted {
		if aborted[i] {
			t.Fatalf("[mw%d] request %d aborted: the differential mixes never refuse", cfg.MergeWidth, i)
		}
	}
	sp := rt.Unwrap().Space()
	for tid := 0; tid < cfg.Workers; tid++ {
		lo, hi := sp.StackRange(tid)
		sp.Zero(lo, int(hi-lo))
	}
	return servedRun{checksum: sp.Checksum(), replies: replies, stats: srv.BatchStats()}, srv
}

func sameReplies(a, b [][]uint64) (int, bool) {
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return i, false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return i, false
			}
		}
	}
	return 0, true
}

// mergeDifferential drives one backend family through the grid: the
// unmerged baseline, wider merge widths under the baseline profile,
// and full-width runs under every named profile (plus extras), all of
// which must agree bit-for-bit on state and replies.
func mergeDifferential(t *testing.T, name string, newBackend func() serve.Backend, extras []tm.Profile, requests int) {
	const seed, width = 21, 8
	base := runServed(t, newBackend(), tm.Baseline(), 1, 1, requests, seed)
	if base.stats.Merged != 0 || base.stats.Txns != uint64(requests) {
		t.Fatalf("width-1 run merged: %+v", base.stats)
	}

	profiles := namedProfiles()
	widths := []int{2, 4, width}
	if testing.Short() {
		profiles = []tm.Profile{tm.Baseline(), tm.RuntimeAll(tm.LogTree), tm.CompilerElision()}
		widths = []int{width}
	}
	for _, w := range widths {
		got := runServed(t, newBackend(), tm.Baseline(), 1, w, requests, seed)
		if got.stats.Merged == 0 {
			t.Errorf("%s mw%d: no batch ever merged (stats %+v)", name, w, got.stats)
		}
		if got.checksum != base.checksum {
			t.Errorf("%s mw%d: final state %#x, want %#x", name, w, got.checksum, base.checksum)
		}
		if i, ok := sameReplies(base.replies, got.replies); !ok {
			t.Errorf("%s mw%d: reply %d = %v, want %v", name, w, i, got.replies[i], base.replies[i])
		}
	}
	for _, p := range append(profiles, extras...) {
		got := runServed(t, newBackend(), p, 1, width, requests, seed)
		if got.checksum != base.checksum {
			t.Errorf("%s under %s (mw%d): final state %#x, want %#x",
				name, p.Name(), width, got.checksum, base.checksum)
		}
		if i, ok := sameReplies(base.replies, got.replies); !ok {
			t.Errorf("%s under %s: reply %d = %v, want %v", name, p.Name(), i, got.replies[i], base.replies[i])
		}
	}
}

func TestServeMergeDifferentialKV(t *testing.T) {
	mergeDifferential(t, "srv-tmkv",
		func() serve.Backend { return tmkv.NewKVBackend(diffKVConfig()) }, nil, diffRequests)
}

func TestServeMergeDifferentialMsg(t *testing.T) {
	// The extra phased profile exercises the Batcher's phase switching:
	// publish-shaped batches compile onto the capture-checking engine,
	// cursor-shaped ones onto the definitely-shared bypass, and the
	// result must still be bit-identical.
	phased := tm.RuntimeAll(tm.LogTree).
		With(tm.WithPhases(PhaseRegimeSpecs()...)).Named("runtime+phases")
	mergeDifferential(t, "srv-tmmsg",
		func() serve.Backend { return tmmsg.NewMsgBackend(diffMsgConfig(diffRequests)) },
		[]tm.Profile{phased}, diffRequests)
}

// TestServeMergeParallelNoLeaks repeats the merged grid at four
// workers: batch composition and final state are scheduling-dependent
// there, but every request must complete unaborted, validation must
// pass, and no orec lock may leak.
func TestServeMergeParallelNoLeaks(t *testing.T) {
	backends := map[string]func() serve.Backend{
		"srv-tmkv":  func() serve.Backend { return tmkv.NewKVBackend(diffKVConfig()) },
		"srv-tmmsg": func() serve.Backend { return tmmsg.NewMsgBackend(diffMsgConfig(1024)) },
	}
	for name, nb := range backends {
		nb := nb
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, p := range []tm.Profile{tm.Baseline(), tm.RuntimeAll(tm.LogTree)} {
				run := runServed(t, nb(), p, 4, 8, 1024, 33)
				for i, words := range run.replies {
					if words == nil {
						t.Fatalf("[%s] request %d never replied", p.Name(), i)
					}
				}
				if run.stats.Requests != 1024 {
					t.Errorf("[%s] stats requests = %d", p.Name(), run.stats.Requests)
				}
			}
		})
	}
}
