// Command benchdiff compares two benchmark reports (schema
// repro/bench-report/v1, as written by `stampbench -format json` and
// tm/bench.WriteJSON) and fails when the current report shows a
// throughput regression against the baseline: a matched (workload,
// profile, threads, engine) row whose best time rose by more than the
// threshold. CI runs it against the previous successful run's
// artifact, making the perf trajectory a gate instead of an archive.
//
// Usage:
//
//	benchdiff [-threshold 25] [-floor 5ms] [-skip-bad-baseline] baseline.json current.json
//
// Rows are matched on (bench, config, threads, engine); rows only one
// report has are listed but never fail the run (workloads and engines
// come and go across PRs). Rows whose current best time is below
// -floor are compared but cannot fire: at that scale scheduler noise
// swamps real regressions. With -skip-bad-baseline an unreadable or
// schema-mismatched *baseline* is treated like an absent one (exit 0),
// so a schema bump cannot wedge CI against a stale artifact; problems
// with the *current* report always fail. Exit status: 0 no
// regression, 1 regression found, 2 usage or input error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"repro/tm/bench"
)

func main() {
	threshold := flag.Float64("threshold", 25, "flag matched rows whose best time rose more than this percent")
	floor := flag.Duration("floor", 5*time.Millisecond, "never flag rows whose current best time is below this")
	skipBadBaseline := flag.Bool("skip-bad-baseline", false,
		"treat an unreadable or schema-mismatched baseline as absent (exit 0) instead of an error")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold PCT] [-floor DUR] [-skip-bad-baseline] baseline.json current.json")
		os.Exit(2)
	}
	os.Exit(run(flag.Arg(0), flag.Arg(1), *threshold, *floor, *skipBadBaseline, os.Stdout, os.Stderr))
}

// run executes the whole gate and returns the process exit code. Each
// report is read exactly once; only the baseline's errors are
// forgivable, and only under -skip-bad-baseline.
func run(basePath, curPath string, thresholdPct float64, floor time.Duration,
	skipBadBaseline bool, out, errw io.Writer) int {
	base, err := readReport(basePath)
	if err != nil {
		if skipBadBaseline {
			fmt.Fprintf(out, "skipping regression gate: baseline unusable: %v\n", err)
			return 0
		}
		fmt.Fprintln(errw, "benchdiff:", err)
		return 2
	}
	cur, err := readReport(curPath)
	if err != nil {
		fmt.Fprintln(errw, "benchdiff:", err)
		return 2
	}
	if diffReports(base, cur, thresholdPct, floor, out) {
		return 1
	}
	return 0
}

// readReport loads one report and rejects unknown schemas: silently
// diffing a report whose fields changed meaning would gate on noise.
func readReport(path string) (bench.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return bench.Report{}, err
	}
	defer f.Close()
	rep, err := bench.ReadJSON(f)
	if err != nil {
		return bench.Report{}, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != bench.ReportSchema {
		return bench.Report{}, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, bench.ReportSchema)
	}
	return rep, nil
}

// runDiff is the path-based form the tests drive: load both reports,
// then compare.
func runDiff(basePath, curPath string, thresholdPct float64, floor time.Duration, w io.Writer) (bool, error) {
	base, err := readReport(basePath)
	if err != nil {
		return false, err
	}
	cur, err := readReport(curPath)
	if err != nil {
		return false, err
	}
	return diffReports(base, cur, thresholdPct, floor, w), nil
}

// diffReports prints the comparison to w and reports whether any row
// regressed.
func diffReports(base, cur bench.Report, thresholdPct float64, floor time.Duration, w io.Writer) bool {
	if base.Machine != cur.Machine {
		fmt.Fprintf(w, "note: reports come from different machines (%+v vs %+v); deltas may reflect the machine, not the code\n",
			base.Machine, cur.Machine)
	}

	c := Compare(base, cur, thresholdPct, floor)
	if len(c.Deltas) == 0 {
		fmt.Fprintln(w, "no comparable timed rows between the two reports")
	} else {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "benchmark\tconfig\tengine\tthreads\tbaseline\tcurrent\tdelta")
		for _, d := range c.Deltas {
			mark := ""
			if d.Regressed {
				mark = "  REGRESSED"
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%v\t%v\t%+.1f%%%s\n",
				d.Bench, d.Config, d.Engine, d.Threads,
				time.Duration(d.BaseNs).Round(time.Microsecond),
				time.Duration(d.CurNs).Round(time.Microsecond),
				d.Pct, mark)
		}
		tw.Flush()
	}
	for _, k := range c.OnlyBase {
		fmt.Fprintf(w, "only in baseline: %s\n", k)
	}
	for _, k := range c.OnlyCur {
		fmt.Fprintf(w, "only in current: %s\n", k)
	}

	regs := c.Regressions()
	if len(regs) == 0 {
		fmt.Fprintf(w, "OK: %d rows compared, none beyond +%.0f%% (floor %v)\n",
			len(c.Deltas), thresholdPct, floor)
		return false
	}
	fmt.Fprintf(w, "FAIL: %d of %d rows regressed beyond +%.0f%% (floor %v); worst: %s %+.1f%%\n",
		len(regs), len(c.Deltas), thresholdPct, floor, regs[0].Key, regs[0].Pct)
	return true
}
