package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/tm/bench"
)

func fixture(name string) string { return filepath.Join("testdata", name) }

// diffFixtures runs the full testable pipeline over two fixture files.
func diffFixtures(t *testing.T, base, cur string, thresholdPct float64, floor time.Duration) (bool, string) {
	t.Helper()
	var buf bytes.Buffer
	regressed, err := gate{thresholdPct: thresholdPct, floor: floor}.runDiff(fixture(base), fixture(cur), &buf)
	if err != nil {
		t.Fatalf("runDiff(%s, %s): %v", base, cur, err)
	}
	return regressed, buf.String()
}

func TestUnchangedPairPasses(t *testing.T) {
	regressed, out := diffFixtures(t, "baseline.json", "baseline.json", 25, 5*time.Millisecond)
	if regressed {
		t.Fatalf("identical reports flagged a regression:\n%s", out)
	}
	if strings.Contains(out, "only in") {
		t.Errorf("identical reports left unmatched rows:\n%s", out)
	}
}

func TestWithinThresholdPasses(t *testing.T) {
	regressed, out := diffFixtures(t, "baseline.json", "current_ok.json", 25, 5*time.Millisecond)
	if regressed {
		t.Fatalf("within-threshold pair flagged a regression:\n%s", out)
	}
	// The engine rename must surface as unmatched on both sides, and
	// the brand-new workload as current-only.
	for _, want := range []string{
		"only in baseline: vacation-low/baseline/generic/1t",
		"only in current: vacation-low/baseline/perf-noinstr/1t",
		"only in current: tmmsg/baseline/perf-noinstr/1t",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRegressionFires(t *testing.T) {
	regressed, out := diffFixtures(t, "baseline.json", "current_regress.json", 25, 5*time.Millisecond)
	if !regressed {
		t.Fatalf("+60%% row not flagged:\n%s", out)
	}
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "tmkv/baseline/perf-noinstr/1t") {
		t.Errorf("output does not name the regressed row:\n%s", out)
	}
}

func TestThresholdRaisesGate(t *testing.T) {
	regressed, out := diffFixtures(t, "baseline.json", "current_regress.json", 100, 5*time.Millisecond)
	if regressed {
		t.Fatalf("+60%% row flagged at a 100%% threshold:\n%s", out)
	}
}

// TestFloorSuppressesNoise: the micro row explodes +250% in the ok
// fixture, but its current time (3.5ms) is under the 5ms floor, so it
// must not fire — yet it must with the floor lowered.
func TestFloorSuppressesNoise(t *testing.T) {
	if regressed, out := diffFixtures(t, "baseline.json", "current_ok.json", 25, 5*time.Millisecond); regressed {
		t.Fatalf("sub-floor noise fired the gate:\n%s", out)
	}
	if regressed, _ := diffFixtures(t, "baseline.json", "current_ok.json", 25, time.Millisecond); !regressed {
		t.Fatal("lowering the floor below the row did not re-enable the gate")
	}
}

func TestCaptureOnlyReportsCompareEmpty(t *testing.T) {
	regressed, out := diffFixtures(t, "capture_only.json", "capture_only.json", 25, 5*time.Millisecond)
	if regressed {
		t.Fatal("capture-only reports flagged a regression")
	}
	if !strings.Contains(out, "no comparable timed rows") {
		t.Errorf("missing empty-comparison notice:\n%s", out)
	}
}

func TestUnknownSchemaRejected(t *testing.T) {
	var buf bytes.Buffer
	if _, err := (gate{thresholdPct: 25, floor: 5 * time.Millisecond}).runDiff(fixture("bad_schema.json"), fixture("baseline.json"), &buf); err == nil {
		t.Fatal("unknown schema accepted")
	}
	if _, err := (gate{thresholdPct: 25, floor: 5 * time.Millisecond}).runDiff(fixture("baseline.json"), fixture("bad_schema.json"), &buf); err == nil {
		t.Fatal("unknown schema accepted as current")
	}
}

// TestExitCodes pins the gate's process contract: 0 clean, 1 on
// regression, 2 on input errors.
func TestExitCodes(t *testing.T) {
	var out, errw bytes.Buffer
	cases := []struct {
		base, cur string
		skip      bool
		want      int
	}{
		{"baseline.json", "current_ok.json", false, 0},
		{"baseline.json", "current_regress.json", false, 1},
		{"bad_schema.json", "baseline.json", false, 2},
		{"baseline.json", "bad_schema.json", false, 2},
		{"missing.json", "baseline.json", false, 2},
	}
	for _, c := range cases {
		g := gate{thresholdPct: 25, floor: 5 * time.Millisecond, skipBadBaseline: c.skip}
		if got := g.run(fixture(c.base), fixture(c.cur), &out, &errw); got != c.want {
			t.Errorf("run(%s, %s, skip=%v) = %d, want %d", c.base, c.cur, c.skip, got, c.want)
		}
	}
}

// TestSkipBadBaseline: with the flag, a stale-schema or unreadable
// baseline is treated as absent (the CI first-run case) — but a broken
// *current* report must still fail.
func TestSkipBadBaseline(t *testing.T) {
	var out, errw bytes.Buffer
	g := gate{thresholdPct: 25, floor: 5 * time.Millisecond, skipBadBaseline: true}
	if got := g.run(fixture("bad_schema.json"), fixture("baseline.json"), &out, &errw); got != 0 {
		t.Errorf("bad baseline with skip flag: exit %d, want 0", got)
	}
	if !strings.Contains(out.String(), "skipping regression gate") {
		t.Errorf("missing skip notice:\n%s", out.String())
	}
	if got := g.run(fixture("missing.json"), fixture("baseline.json"), &out, &errw); got != 0 {
		t.Errorf("missing baseline with skip flag: exit %d, want 0", got)
	}
	if got := g.run(fixture("baseline.json"), fixture("bad_schema.json"), &out, &errw); got != 2 {
		t.Errorf("bad current with skip flag: exit %d, want 2", got)
	}
	// A usable baseline still gates normally under the flag.
	if got := g.run(fixture("baseline.json"), fixture("current_regress.json"), &out, &errw); got != 1 {
		t.Errorf("regression with skip flag: exit %d, want 1", got)
	}
}

// TestRequireMatched pins the vanished-workload gate: by default a
// baseline-only row never fails, but under -require-matched a workload
// dropped from the sweep (the current_dropped fixture is the baseline
// minus every tmkv row) fails the run with exit 1 — unless the
// workload is named in the allowlist as a deliberate removal.
func TestRequireMatched(t *testing.T) {
	var out, errw bytes.Buffer
	relaxed := gate{thresholdPct: 25, floor: 5 * time.Millisecond}
	if got := relaxed.run(fixture("baseline.json"), fixture("current_dropped.json"), &out, &errw); got != 0 {
		t.Errorf("dropped workload without -require-matched: exit %d, want 0\n%s", got, out.String())
	}

	out.Reset()
	strict := relaxed
	strict.requireMatched = true
	if got := strict.run(fixture("baseline.json"), fixture("current_dropped.json"), &out, &errw); got != 1 {
		t.Errorf("dropped workload under -require-matched: exit %d, want 1\n%s", got, out.String())
	}
	for _, want := range []string{"VANISHED", "tmkv/baseline/perf-noinstr/1t", "no current counterpart"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("strict output missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	allowed := strict
	allowed.allowVanished = map[string]bool{"tmkv": true}
	if got := allowed.run(fixture("baseline.json"), fixture("current_dropped.json"), &out, &errw); got != 0 {
		t.Errorf("allowlisted removal: exit %d, want 0\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "allowed removal") {
		t.Errorf("allowlisted output missing the removal note:\n%s", out.String())
	}

	// An engine rename also unmatches its baseline row (the engine is
	// part of the key), so strict gates must allowlist renames too —
	// current_ok renames vacation-low's engine and adds new rows.
	out.Reset()
	if got := strict.run(fixture("baseline.json"), fixture("current_ok.json"), &out, &errw); got != 1 {
		t.Errorf("engine rename under -require-matched: exit %d, want 1\n%s", got, out.String())
	}
	out.Reset()
	allowed.allowVanished = map[string]bool{"vacation-low": true}
	if got := allowed.run(fixture("baseline.json"), fixture("current_ok.json"), &out, &errw); got != 0 {
		t.Errorf("allowlisted rename: exit %d, want 0\n%s", got, out.String())
	}
}

// TestLatencyMetricsGate: a row with an open-loop latency block yields
// p95/p99 metrics matched and gated like throughput minima. The
// regress fixture raises one row's p99 by +60% while its min and p95
// stay within threshold — only the p99 metric may fire.
func TestLatencyMetricsGate(t *testing.T) {
	regressed, out := diffFixtures(t, "baseline_latency.json", "baseline_latency.json", 25, 5*time.Millisecond)
	if regressed {
		t.Fatalf("identical latency reports flagged a regression:\n%s", out)
	}
	if strings.Contains(out, "only in") {
		t.Errorf("identical latency reports left unmatched rows:\n%s", out)
	}
	// 3 latency rows x (min, p95, p99) + 1 plain row x min = 10 deltas.
	if !strings.Contains(out, "OK: 10 rows compared") {
		t.Errorf("expected 10 compared rows:\n%s", out)
	}

	regressed, out = diffFixtures(t, "baseline_latency.json", "current_latency_regress.json", 25, 5*time.Millisecond)
	if !regressed {
		t.Fatalf("+60%% p99 not flagged:\n%s", out)
	}
	if !strings.Contains(out, "srv-tmkv/runtime-rw-stack-heap-tree+mw4@peak/counting/2t/p99") {
		t.Errorf("output does not name the regressed p99 row:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "REGRESSED") && !strings.Contains(line, "p99") {
			t.Errorf("non-p99 metric flagged: %s", line)
		}
	}
}

// TestLatencyFloorSuppressesNoise: the paced srv-tmmsg row explodes
// +250%/+167% on p95/p99 in the regress fixture, but its current
// values sit under the 5ms floor, so it must not fire once the p99
// regression is tolerated by a higher threshold — yet it must fire
// with the floor lowered.
func TestLatencyFloorSuppressesNoise(t *testing.T) {
	if regressed, out := diffFixtures(t, "baseline_latency.json", "current_latency_regress.json", 100, 5*time.Millisecond); regressed {
		t.Fatalf("sub-floor latency noise fired the gate:\n%s", out)
	}
	regressed, out := diffFixtures(t, "baseline_latency.json", "current_latency_regress.json", 100, time.Millisecond)
	if !regressed {
		t.Fatal("lowering the floor below the latency row did not re-enable the gate")
	}
	if !strings.Contains(out, "srv-tmmsg") {
		t.Errorf("output does not name the sub-floor row:\n%s", out)
	}
}

// TestLatencyBlockVanishedRows: a current report whose rows lost their
// latency blocks (a tmsrv sweep silently downgraded to throughput
// only) keeps matching on min but leaves the p95/p99 baseline keys
// unmatched — invisible by default, fatal under -require-matched, and
// allowlistable per workload.
func TestLatencyBlockVanishedRows(t *testing.T) {
	var out, errw bytes.Buffer
	relaxed := gate{thresholdPct: 25, floor: 5 * time.Millisecond}
	if got := relaxed.run(fixture("baseline_latency.json"), fixture("current_latency_dropped.json"), &out, &errw); got != 0 {
		t.Errorf("dropped latency blocks without -require-matched: exit %d, want 0\n%s", got, out.String())
	}

	out.Reset()
	strict := relaxed
	strict.requireMatched = true
	if got := strict.run(fixture("baseline_latency.json"), fixture("current_latency_dropped.json"), &out, &errw); got != 1 {
		t.Errorf("dropped latency blocks under -require-matched: exit %d, want 1\n%s", got, out.String())
	}
	for _, want := range []string{"VANISHED", "/p95", "/p99"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("strict output missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	allowed := strict
	allowed.allowVanished = map[string]bool{"srv-tmkv": true, "srv-tmmsg": true}
	if got := allowed.run(fixture("baseline_latency.json"), fixture("current_latency_dropped.json"), &out, &errw); got != 0 {
		t.Errorf("allowlisted latency removal: exit %d, want 0\n%s", got, out.String())
	}
}

// TestIndexResultsMetrics pins the key fan-out on in-memory reports:
// a latency row yields min+p95+p99, a plain row yields min only, an
// untimed latency row yields the quantiles alone.
func TestIndexResultsMetrics(t *testing.T) {
	lat := &bench.LatencyStats{P95Ns: 500, P99Ns: 900}
	rep := bench.Report{Schema: bench.ReportSchema, Results: []bench.ResultJSON{
		{Bench: "a", Config: "c", Engine: "e", Threads: 1, MinNs: 100, Latency: lat},
		{Bench: "b", Config: "c", Engine: "e", Threads: 1, MinNs: 100},
		{Bench: "c", Config: "c", Engine: "e", Threads: 1, Latency: lat},
	}}
	idx := indexResults(rep)
	if len(idx) != 6 {
		t.Fatalf("index size = %d, want 6: %v", len(idx), idx)
	}
	key := func(b, m string) Key { return Key{Bench: b, Config: "c", Engine: "e", Threads: 1, Metric: m} }
	for k, want := range map[Key]int64{
		key("a", MetricMin): 100, key("a", MetricP95): 500, key("a", MetricP99): 900,
		key("b", MetricMin): 100,
		key("c", MetricP95): 500, key("c", MetricP99): 900,
	} {
		if got := idx[k]; got != want {
			t.Errorf("%s = %d, want %d", k, got, want)
		}
	}
}

// TestSplitNames pins the allowlist parser: blanks trimmed, empties
// dropped.
func TestSplitNames(t *testing.T) {
	got := splitNames(" tmkv , ,tmmsg,")
	if len(got) != 2 || !got["tmkv"] || !got["tmmsg"] {
		t.Errorf("splitNames = %v", got)
	}
	if len(splitNames("")) != 0 {
		t.Error("empty allowlist not empty")
	}
}

// TestCompareSemantics pins the matching rules on in-memory reports:
// duplicate keys keep the fastest run, untimed rows are ignored, and
// the delta math is exact.
func TestCompareSemantics(t *testing.T) {
	row := func(benchName string, threads int, minNs int64) bench.ResultJSON {
		return bench.ResultJSON{Bench: benchName, Config: "baseline", Engine: "perf-noinstr",
			Threads: threads, MinNs: minNs}
	}
	base := bench.Report{Schema: bench.ReportSchema, Results: []bench.ResultJSON{
		row("a", 1, 100), row("a", 1, 80), // duplicate: keep 80
		row("b", 1, 0), // untimed: ignored
		row("c", 1, 200),
	}}
	cur := bench.Report{Schema: bench.ReportSchema, Results: []bench.ResultJSON{
		row("a", 1, 120),
		row("c", 1, 150),
	}}
	c := Compare(base, cur, 25, 0)
	if len(c.Deltas) != 2 || len(c.OnlyBase) != 0 || len(c.OnlyCur) != 0 {
		t.Fatalf("got %d deltas, %d only-base, %d only-cur", len(c.Deltas), len(c.OnlyBase), len(c.OnlyCur))
	}
	a := c.Deltas[0]
	if a.BaseNs != 80 || a.CurNs != 120 || a.Pct != 50 || !a.Regressed {
		t.Errorf("row a: %+v", a)
	}
	cRow := c.Deltas[1]
	if cRow.Pct != -25 || cRow.Regressed {
		t.Errorf("row c: %+v", cRow)
	}
	if regs := c.Regressions(); len(regs) != 1 || regs[0].Bench != "a" {
		t.Errorf("regressions: %+v", regs)
	}
}

// TestRegressionsRankedWorstFirst pins the failure summary's ranking:
// Regressions() orders flagged rows by slowdown (ties keep key order),
// and diffReports lists the top worstShown with the tail summarized.
func TestRegressionsRankedWorstFirst(t *testing.T) {
	row := func(benchName string, minNs int64) bench.ResultJSON {
		return bench.ResultJSON{Bench: benchName, Config: "baseline", Engine: "perf-noinstr",
			Threads: 1, MinNs: minNs}
	}
	var baseRows, curRows []bench.ResultJSON
	// Seven regressions with distinct slowdowns: g +80%, f +70%, ... a +20%.
	names := []string{"a", "b", "c", "d", "e", "f", "g"}
	for i, n := range names {
		baseRows = append(baseRows, row(n, 1000))
		curRows = append(curRows, row(n, int64(1200+i*100)))
	}
	base := bench.Report{Schema: bench.ReportSchema, Results: baseRows}
	cur := bench.Report{Schema: bench.ReportSchema, Results: curRows}

	c := Compare(base, cur, 10, 0)
	regs := c.Regressions()
	if len(regs) != len(names) {
		t.Fatalf("regressions = %d, want %d", len(regs), len(names))
	}
	for i := 1; i < len(regs); i++ {
		if regs[i].Pct > regs[i-1].Pct {
			t.Fatalf("regressions not worst-first: %+v before %+v", regs[i-1], regs[i])
		}
	}
	if regs[0].Bench != "g" || regs[len(regs)-1].Bench != "a" {
		t.Errorf("ranking ends = %s..%s, want g..a", regs[0].Bench, regs[len(regs)-1].Bench)
	}

	var buf bytes.Buffer
	if !(gate{thresholdPct: 10}).diffReports(base, cur, &buf) {
		t.Fatal("gate did not fail")
	}
	out := buf.String()
	fail := out[strings.Index(out, "FAIL:"):]
	// The worst worstShown rows are listed in rank order; the rest are a count.
	order := []string{"g/", "f/", "e/", "d/", "c/"}
	pos := 0
	for _, name := range order {
		at := strings.Index(fail[pos:], name)
		if at < 0 {
			t.Fatalf("summary missing or misordered %q:\n%s", name, fail)
		}
		pos += at
	}
	if strings.Contains(fail, "b/") || strings.Contains(fail, "a/") {
		t.Errorf("summary lists rows beyond the top %d:\n%s", worstShown, fail)
	}
	if !strings.Contains(fail, "... and 2 more") {
		t.Errorf("summary missing the tail count:\n%s", fail)
	}

	// Ties keep key order, so equal slowdowns list deterministically.
	tied := Compare(base, bench.Report{Schema: bench.ReportSchema, Results: []bench.ResultJSON{
		row("c", 2000), row("a", 2000), row("b", 2000),
	}}, 10, 0)
	tregs := tied.Regressions()
	if len(tregs) != 3 || tregs[0].Bench != "a" || tregs[1].Bench != "b" || tregs[2].Bench != "c" {
		t.Errorf("tied ranking = %+v, want key order a, b, c", tregs)
	}
}
