package stm

import (
	"repro/internal/capture"
	"repro/internal/mem"
)

// This file is the log layer of the transaction: the read set, the
// write (lock) set, the undo log with its write-after-write filter, the
// allocation/free logs, and the capture-log maintenance behind the
// paper's is_captured() probe. barrier.go and engine.go call into these
// from the hot paths; lifecycle.go replays and truncates them.

type readEntry struct {
	oi uint64 // orec index
	v  uint64 // orec word observed at read time
}

// writeEntry records one acquired orec, in acquisition order so aborts
// can release exactly the locks a savepoint scope took. The orec word
// each lock replaced lives in Tx.lockedPrev, keyed by orec index.
type writeEntry struct {
	oi uint64 // orec index
}

type undoEntry struct {
	addr mem.Addr
	val  uint64
}

type allocRec struct {
	addr  mem.Addr
	size  int
	depth int32
	dead  bool // freed again within the same transaction
}

type savepoint struct {
	read, write, undo int
	alloc, free       int
	sp                mem.Addr
}

const wawSlots = 256 // power of two

// wawEntry remembers where in the undo log an address was last logged
// (undoIdx), so the skip test can verify the entry is still live and
// would actually be replayed by any abort affecting the new write.
type wawEntry struct {
	addr    mem.Addr
	epoch   uint64
	undoIdx int
}

// validate checks every read-set entry: the orec must be unchanged, or
// locked by us with its pre-acquisition version matching what we read.
func (tx *Tx) validate(rt *Runtime) bool {
	for i := range tx.readset {
		re := &tx.readset[i]
		cur := rt.orecs[re.oi].Load()
		if cur == re.v {
			continue
		}
		if orecLocked(cur) && orecOwner(cur) == tx.th.id {
			if tx.prevOrecWord(re.oi) == re.v {
				continue
			}
		}
		return false
	}
	return true
}

// prevOrecWord returns the orec word we replaced when locking oi. The
// lookup is populated at lock time (writeFull) and trimmed by partial
// aborts, so conflict-heavy commits validate in O(reads) instead of the
// former O(reads×writes) write-log rescans.
func (tx *Tx) prevOrecWord(oi uint64) uint64 {
	if v, ok := tx.lockedPrev[oi]; ok {
		return v
	}
	return ^uint64(0)
}

// --- Transactional allocation (Sec. 3.1.2's extended allocator) ---

// Alloc allocates n words inside the transaction and records the block
// in the allocation log. The memory is captured: until commit it is
// invisible to every other transaction.
func (tx *Tx) Alloc(n int) mem.Addr {
	p := tx.th.alloc.Alloc(n)
	size := tx.th.alloc.BlockSize(p)
	tx.allocs = append(tx.allocs, allocRec{addr: p, size: size, depth: tx.depth})
	tx.insertIntoLogs(p, size)
	tx.th.stats.TxAllocs++
	return p
}

// Free frees a block inside the transaction. A block allocated by this
// transaction at the current nesting depth is reclaimed immediately
// (it never escaped and cannot be resurrected by a partial abort); a
// block allocated at an outer depth or before the transaction is freed
// only when the transaction commits, so aborts can undo the free.
func (tx *Tx) Free(p mem.Addr) {
	if p == mem.Nil {
		return
	}
	tx.th.stats.TxFrees++
	for i := len(tx.allocs) - 1; i >= 0; i-- {
		a := &tx.allocs[i]
		if a.addr == p && !a.dead {
			if a.depth == tx.depth {
				a.dead = true
				tx.removeFromLogs(p, a.size)
				tx.th.alloc.Free(p)
				return
			}
			break // allocated at an outer depth: defer
		}
	}
	tx.frees = append(tx.frees, p)
}

func (tx *Tx) insertIntoLogs(p mem.Addr, size int) {
	if tx.alog != nil {
		tx.alog.Insert(p, p+mem.Addr(size))
		tx.allocLive++
	}
	if tx.clog != nil {
		tx.clog.Insert(p, p+mem.Addr(size))
	}
}

func (tx *Tx) removeFromLogs(p mem.Addr, size int) {
	if tx.alog != nil {
		tx.alog.Remove(p, p+mem.Addr(size))
		tx.allocLive--
	}
	if tx.clog != nil {
		tx.clog.Remove(p, p+mem.Addr(size))
	}
}

// alogContains is the is_captured() heap probe of the paper's Fig. 2,
// devirtualized for the instrumented barrier chains. The specialized
// perf engines inline the kind-specific probe instead (engine.go).
func (tx *Tx) alogContains(a mem.Addr) bool {
	if tx.allocLive == 0 {
		return false
	}
	switch tx.alogKind {
	case capture.KindTree:
		return tx.alogTree.Contains(a, 1)
	case capture.KindArray:
		return tx.alogArr.Contains(a, 1)
	default:
		return tx.alogFil.Contains(a, 1)
	}
}

// StackAlloc allocates an n-word frame on the transaction-local stack.
// The frame lives until the enclosing top-level transaction ends and
// is reclaimed automatically (Fig. 3: the region between start_sp and
// the current stack pointer).
func (tx *Tx) StackAlloc(n int) mem.Addr {
	f := tx.th.stack.Push(n)
	tx.curSP = f
	return f
}

// onTxStack is the paper's Fig. 4 range check: the address lies in the
// stack region grown since transaction begin.
func (tx *Tx) onTxStack(a mem.Addr) bool {
	return a >= tx.curSP && a < tx.startSP
}

// logUndo records the old value of a, unless the write-after-write
// filter shows a live undo entry already covers it — the baseline's
// cheap WAW check that the paper credits for yada.
//
// "Covers" is subtle under closed nesting with partial abort: the
// prior entry must (a) still be in the log (not truncated by a partial
// abort and not overwritten after truncation), and (b) lie at or after
// the innermost savepoint, so every abort that could undo the new
// write replays it. Entries from an outer scope fail (b): a partial
// abort of the current nested transaction would not replay them.
func (tx *Tx) logUndo(a mem.Addr) {
	if tx.useWAW {
		s := &tx.waw[(uint64(a)*0x9E3779B97F4A7C15>>33)&(wawSlots-1)]
		if s.addr == a && s.epoch == tx.epoch &&
			s.undoIdx < len(tx.undo) && tx.undo[s.undoIdx].addr == a &&
			s.undoIdx >= tx.undoScopeBase() {
			tx.th.stats.WriteWAWSkips += tx.statInc()
			return
		}
		s.addr = a
		s.epoch = tx.epoch
		s.undoIdx = len(tx.undo)
	}
	tx.undo = append(tx.undo, undoEntry{a, tx.th.rt.space.Load(a)})
}

// undoScopeBase returns the undo-log position of the innermost
// savepoint (0 at top level).
func (tx *Tx) undoScopeBase() int {
	if len(tx.saves) == 0 {
		return 0
	}
	return tx.saves[len(tx.saves)-1].undo
}
