package tlc

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/capture"
	"repro/internal/stm"
)

func mustCompile(t *testing.T, src string) *Compiled {
	t.Helper()
	c, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

func run1(t *testing.T, c *Compiled, cfg stm.OptConfig, fn string, args ...uint64) (uint64, *Interp) {
	t.Helper()
	rt := stm.New(c.DefaultMemConfig(), cfg)
	in := NewInterp(c, rt)
	v, err := in.Call(rt.Thread(0), fn, args...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v, in
}

func TestLexerBasics(t *testing.T) {
	toks, err := lexAll("fn main() int { return 0x1F + 42; } // comment")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokKind{tokFn, tokIdent, tokLParen, tokRParen, tokIdent, tokLBrace,
		tokReturn, tokInt, tokPlus, tokInt, tokSemi, tokRBrace, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d: kind %v, want %v", i, toks[i].kind, k)
		}
	}
	if toks[7].val != 0x1F || toks[9].val != 42 {
		t.Errorf("literal values wrong: %d %d", toks[7].val, toks[9].val)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"@", "fn main() { 0xZZ }", "|"} {
		if _, err := lexAll(src); err == nil {
			t.Errorf("no lex error for %q", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"fn",                      // truncated
		"fn main( {}",             // bad params
		"struct S { x unknown; }", // bad type keyword usage (caught in sema? parser: 'unknown' type name)
		"fn main() { if 1 { } }",  // parses; sema rejects int cond — not a parse error
		"var g;",                  // missing type
		"fn f() { x = ; }",        // missing expr
		"fn f() { return 1 }",     // missing semicolon
	}
	for _, src := range cases[:2] {
		if _, err := parse(src); err == nil {
			t.Errorf("no parse error for %q", src)
		}
	}
	for _, src := range []string{cases[4], cases[5], cases[6]} {
		if _, err := parse(src); err == nil {
			t.Errorf("no parse error for %q", src)
		}
	}
}

func TestSemaErrors(t *testing.T) {
	cases := map[string]string{
		"undefined var":  `fn main() { x = 1; }`,
		"type mismatch":  `fn main() { var x int; x = true; }`,
		"bad cond":       `fn main() { if 1 { } }`,
		"bad field":      `struct S { x int; } fn main() { var p *S; p.y = 1; }`,
		"unknown fn":     `fn main() { f(); }`,
		"arg count":      `fn f(a int) {} fn main() { f(); }`,
		"break outside":  `fn main() { break; }`,
		"abort outside":  `fn main() { abort; }`,
		"bad return":     `fn main() int { return true; }`,
		"unknown struct": `fn main() { var p *Nope; }`,
		"dup struct":     `struct S { x int; } struct S { y int; } fn main() {}`,
	}
	for name, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("%s: compile succeeded, want error", name)
		}
	}
}

func TestArithmeticAndControlFlow(t *testing.T) {
	src := `
fn fib(n int) int {
	if n < 2 { return n; }
	return fib(n - 1) + fib(n - 2);
}
fn main() int {
	var sum int;
	var i int;
	i = 0;
	while i < 10 {
		if i % 2 == 0 { sum = sum + fib(i); }
		i = i + 1;
	}
	return sum;
}`
	c := mustCompile(t, src)
	v, _ := run1(t, c, stm.Baseline(), "main")
	// fib(0)+fib(2)+fib(4)+fib(6)+fib(8) = 0+1+3+8+21 = 33
	if v != 33 {
		t.Errorf("main() = %d, want 33", v)
	}
}

func TestBreakContinueLogic(t *testing.T) {
	src := `
fn main() int {
	var n int;
	var i int;
	i = 0;
	while true {
		i = i + 1;
		if i > 100 { break; }
		if i % 3 != 0 { continue; }
		n = n + i;
	}
	return n;
}`
	v, _ := run1(t, mustCompile(t, src), stm.Baseline(), "main")
	want := uint64(0)
	for i := 3; i <= 100; i += 3 {
		want += uint64(i)
	}
	if v != want {
		t.Errorf("main() = %d, want %d", v, want)
	}
}

const listSrc = `
struct Node {
	key  int;
	next *Node;
}
struct List {
	head *Node;
	size int;
}
var glist *List;

fn newList() *List {
	var l *List;
	l = alloc List;
	return l;
}

// push allocates the node inside the caller's transaction; after
// inlining the analysis proves n transaction-local.
fn push(l *List, key int) {
	var n *Node;
	n = alloc Node;
	n.key = key;
	n.next = l.head;
	l.head = n;
	l.size = l.size + 1;
}

fn sum(l *List) int {
	var s int;
	var cur *Node;
	cur = l.head;
	while cur != nil {
		s = s + cur.key;
		cur = cur.next;
	}
	return s;
}

fn main() int {
	atomic {
		glist = newList();
	}
	var i int;
	i = 1;
	while i <= 10 {
		atomic {
			push(glist, i);
		}
		i = i + 1;
	}
	var total int;
	atomic {
		total = sum(glist);
	}
	return total;
}`

func TestListProgramAllConfigs(t *testing.T) {
	c := mustCompile(t, listSrc)
	cfgs := []stm.OptConfig{
		stm.Baseline(),
		stm.RuntimeAll(capture.KindTree),
		stm.RuntimeAll(capture.KindArray),
		stm.Compiler(),
	}
	for _, cfg := range cfgs {
		v, _ := run1(t, c, cfg, "main")
		if v != 55 {
			t.Errorf("[%s] main() = %d, want 55", cfg.Name, v)
		}
	}
}

func TestCaptureAnalysisFindsFreshSites(t *testing.T) {
	c := mustCompile(t, listSrc)
	if c.Analysis.Fresh == 0 {
		t.Fatalf("analysis found no fresh sites:\n%s", c.Report())
	}
	// The push body (inlined) must elide n.key, n.next stores; the
	// list header accesses via the parameter l (unknown) are kept.
	if c.Analysis.Unknown == 0 {
		t.Error("analysis claims everything is captured; header accesses must be kept")
	}
	rep := c.Report()
	if !strings.Contains(rep, "fresh") || !strings.Contains(rep, "unknown") {
		t.Errorf("report missing classifications:\n%s", rep)
	}
}

func TestInliningExtendsAnalysis(t *testing.T) {
	with := mustCompile(t, listSrc)
	without, err := CompileNoInline(listSrc)
	if err != nil {
		t.Fatal(err)
	}
	if with.Analysis.Fresh <= without.Analysis.Fresh {
		t.Errorf("inlining did not increase elisions: with=%d without=%d",
			with.Analysis.Fresh, without.Analysis.Fresh)
	}
	// And the non-inlined program still runs correctly under Compiler.
	v, _ := run1(t, without, stm.Compiler(), "main")
	if v != 55 {
		t.Errorf("no-inline main() = %d, want 55", v)
	}
}

// TestElisionSoundness is the cross-validation the package exists for:
// run TL programs under Compiler elision with the runtime's precise
// dynamic oracle enabled; any statically elided access that is not
// captured panics.
func TestElisionSoundness(t *testing.T) {
	srcs := map[string]string{"list": listSrc, "stack": stackSrc, "mix": mixSrc}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			c := mustCompile(t, src)
			cfg := stm.Compiler()
			cfg.Counting = true
			cfg.VerifyElision = true
			rt := stm.New(c.DefaultMemConfig(), cfg)
			in := NewInterp(c, rt)
			if _, err := in.Call(rt.Thread(0), "main"); err != nil {
				t.Fatal(err)
			}
			s := rt.Stats()
			if s.ReadElStatic+s.WriteElStatic == 0 {
				t.Error("no static elisions happened; soundness test is vacuous")
			}
		})
	}
}

const stackSrc = `
var total int;
fn main() int {
	var i int;
	i = 0;
	while i < 8 {
		atomic {
			var buf [4]int;       // transaction-local stack array
			buf[0] = i;
			buf[1] = buf[0] * 2;
			buf[2] = buf[1] + buf[0];
			total = total + buf[2];
		}
		i = i + 1;
	}
	return total;
}`

func TestStackArrayCapture(t *testing.T) {
	c := mustCompile(t, stackSrc)
	if c.Analysis.Stack == 0 {
		t.Fatalf("no stack-captured sites:\n%s", c.Report())
	}
	v, _ := run1(t, c, stm.Compiler(), "main")
	want := uint64(0)
	for i := uint64(0); i < 8; i++ {
		want += i * 3
	}
	if v != want {
		t.Errorf("main() = %d, want %d", v, want)
	}
	// Under runtime capture analysis the same accesses are elided by
	// the stack range check.
	rt := stm.New(c.DefaultMemConfig(), stm.RuntimeAll(capture.KindTree))
	in := NewInterp(c, rt)
	if _, err := in.Call(rt.Thread(0), "main"); err != nil {
		t.Fatal(err)
	}
	if s := rt.Stats(); s.ReadElStack == 0 || s.WriteElStack == 0 {
		t.Errorf("runtime stack elisions r=%d w=%d, want both > 0", s.ReadElStack, s.WriteElStack)
	}
}

// mixSrc exercises conditional provenance: p is fresh on one branch
// only, so accesses after the join must keep their barriers, while the
// branch-local access is elided.
const mixSrc = `
struct Box { v int; }
var shared *Box;
fn main() int {
	var r int;
	atomic {
		shared = alloc Box;
		shared.v = 1;
	}
	atomic {
		var p *Box;
		if shared.v > 0 {
			p = alloc Box;
			p.v = 10;          // fresh here: elidable
		} else {
			p = shared;
		}
		p.v = p.v + 1;         // join: NOT provably fresh, barrier kept
		r = p.v;
	}
	return r;
}`

func TestJoinKillsProvenance(t *testing.T) {
	c := mustCompile(t, mixSrc)
	v, _ := run1(t, c, stm.Compiler(), "main")
	if v != 11 {
		t.Errorf("main() = %d, want 11", v)
	}
	// Exactly the branch-local store is fresh; the post-join access
	// sites must be unknown.
	if c.Analysis.Fresh == 0 {
		t.Errorf("branch-local store not elided:\n%s", c.Report())
	}
	rep := c.Report()
	if !strings.Contains(rep, "unknown") {
		t.Errorf("post-join accesses not kept:\n%s", rep)
	}
}

func TestUserAbortStatement(t *testing.T) {
	src := `
var g int;
fn main() int {
	atomic {
		g = 42;
		abort;
	}
	return g;
}`
	v, _ := run1(t, mustCompile(t, src), stm.Baseline(), "main")
	if v != 0 {
		t.Errorf("aborted write visible: g = %d, want 0", v)
	}
}

func TestNestedAtomicPartialAbort(t *testing.T) {
	src := `
var a int;
var b int;
fn main() int {
	atomic {
		a = 1;
		atomic {
			b = 2;
			abort;
		}
		// b's write is rolled back, a's survives
	}
	return a * 10 + b;
}`
	v, _ := run1(t, mustCompile(t, src), stm.Baseline(), "main")
	if v != 10 {
		t.Errorf("main() = %d, want 10", v)
	}
}

func TestRegisterCheckpointOnRetry(t *testing.T) {
	// i is live-in to the atomic block and incremented inside it; under
	// contention the transaction retries and the increment must not be
	// applied twice. Two threads hammer a shared counter through TL.
	src := `
var counter int;
fn work(n int) {
	var i int;
	i = 0;
	while i < n {
		atomic {
			counter = counter + 1;
		}
		i = i + 1;
	}
}
fn get() int { return counter; }`
	c := mustCompile(t, src)
	rt := stm.New(c.DefaultMemConfig(), stm.Baseline())
	in := NewInterp(c, rt)
	const threads, per = 6, 400
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if _, err := in.Call(rt.Thread(id), "work", per); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	v, err := in.Call(rt.Thread(0), "get")
	if err != nil {
		t.Fatal(err)
	}
	if v != threads*per {
		t.Errorf("counter = %d, want %d", v, threads*per)
	}
	if rt.Stats().Aborts == 0 {
		t.Log("note: no conflicts occurred; retry path not exercised this run")
	}
	rt.Validate()
}

func TestRuntimeErrors(t *testing.T) {
	cases := map[string]string{
		"nil deref": `struct S { x int; } fn main() { var p *S; p.x = 1; }`,
		"div zero":  `fn main() int { var z int; return 1 / z; }`,
		"oob":       `fn main() { var a [2]int; var i int; i = 5; a[i] = 1; }`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			c := mustCompile(t, src)
			rt := stm.New(c.DefaultMemConfig(), stm.Baseline())
			in := NewInterp(c, rt)
			if _, err := in.Call(rt.Thread(0), "main"); err == nil {
				t.Error("no runtime error")
			}
			rt.Validate() // errors inside transactions must roll back
		})
	}
}

func TestRuntimeErrorInsideAtomicRollsBack(t *testing.T) {
	src := `
struct S { x int; }
var g int;
fn main() {
	atomic {
		g = 99;
		var p *S;
		p.x = 1; // nil deref aborts the transaction
	}
}
fn get() int { return g; }`
	c := mustCompile(t, src)
	rt := stm.New(c.DefaultMemConfig(), stm.Baseline())
	in := NewInterp(c, rt)
	if _, err := in.Call(rt.Thread(0), "main"); err == nil {
		t.Fatal("no error")
	}
	// g's write must have been rolled back with the failed transaction.
	v, err := in.Call(rt.Thread(0), "get")
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("g = %d after failed transaction, want 0", v)
	}
	rt.Validate()
}

func TestFreeAndRealloc(t *testing.T) {
	src := `
struct S { x int; }
var keep *S;
fn main() int {
	atomic {
		var p *S;
		p = alloc S;
		p.x = 7;
		free(p);
		p = alloc S;   // may reuse the block
		p.x = 9;
		keep = p;
	}
	atomic {
		var q *S;
		q = keep;
		free(q);
	}
	return 0;
}`
	c := mustCompile(t, listSrc)
	_ = c
	c2 := mustCompile(t, src)
	rt := stm.New(c2.DefaultMemConfig(), stm.RuntimeAll(capture.KindTree))
	in := NewInterp(c2, rt)
	if _, err := in.Call(rt.Thread(0), "main"); err != nil {
		t.Fatal(err)
	}
	s := rt.Stats()
	if s.TxAllocs != s.TxFrees {
		t.Errorf("allocs %d != frees %d", s.TxAllocs, s.TxFrees)
	}
}

func TestPrintBuiltin(t *testing.T) {
	src := `fn main() { print(7); print(8); }`
	_, in := run1(t, mustCompile(t, src), stm.Baseline(), "main")
	out := in.Output()
	if len(out) != 2 || out[0] != 7 || out[1] != 8 {
		t.Errorf("output = %v", out)
	}
}

func TestGlobalsArrays(t *testing.T) {
	src := `
var hist [8]int;
fn main() int {
	var i int;
	i = 0;
	while i < 32 {
		atomic {
			hist[i % 8] = hist[i % 8] + 1;
		}
		i = i + 1;
	}
	var s int;
	i = 0;
	while i < 8 {
		s = s + hist[i];
		i = i + 1;
	}
	return s;
}`
	v, _ := run1(t, mustCompile(t, src), stm.Baseline(), "main")
	if v != 32 {
		t.Errorf("main() = %d, want 32", v)
	}
}
