package stm

// This file is the phase layer of the barrier engine. A Runtime may
// declare named workload phases (OptConfig.Phases), each carrying its
// own optimization configuration; every phase is compiled to its own
// barrier engine up front, and threads switch between the compiled
// engines at transaction boundaries via EnterPhase hints. The paper
// compiles ONE barrier mix per program, but a workload like tmmsg runs
// operations from opposite capture regimes in one process — batch
// publishes want the capture-checking fast paths, cursor read-modify-
// writes want the definitely-shared bypass — so a single engine always
// leaves one regime on the wrong fast path. Phase switches never take
// effect inside a running transaction: a hint given mid-transaction is
// deferred until the top-level transaction (including all its retries)
// has ended, so one attempt never mixes two engines' barrier decisions.

// compiledPhase is one entry of a Runtime's engine table: a declared
// phase kind, the full configuration its engine compiles from, and the
// compiled engine itself. Index 0 of the table is always the default
// phase (kind ""), compiled from the base configuration. Adaptive
// kinds contribute several entries that share one kind and differ in
// variant (adaptive.go); manual entries have an empty variant.
type compiledPhase struct {
	kind    string
	variant string // "" for manual/default entries; Variant* otherwise
	cfg     OptConfig
	eng     *engine
	cm      *cmgr // the phase's compiled contention manager (cm.go)
}

// compilePhases builds the engine table for cfg: the base configuration
// at index 0, then one entry per declared phase, in declaration order.
func compilePhases(cfg OptConfig) ([]compiledPhase, map[string]int) {
	base := cfg
	base.Phases = nil
	validatePhaseCfg("", base)
	phases := []compiledPhase{{kind: "", cfg: base, eng: newEngine(base), cm: cmFor(base.CM)}}
	idx := make(map[string]int, len(cfg.Phases))
	for _, pc := range cfg.Phases {
		if pc.Kind == "" {
			panic("stm: phase kind must be non-empty")
		}
		if _, dup := idx[pc.Kind]; dup {
			panic("stm: duplicate phase kind " + pc.Kind)
		}
		c := pc.Cfg
		c.Phases = nil // phases do not nest
		// Structural knobs are per-Runtime, not per-phase: every engine
		// shares one orec table, so a phase cannot resize it.
		c.OrecBits = base.OrecBits
		// The engine-force knob is a Runtime-level differential-testing
		// switch: it must pin every phase's engine, or a "forced
		// generic" reference run would still execute specialized code
		// after the first phase switch.
		c.ForceGeneric = c.ForceGeneric || base.ForceGeneric
		validatePhaseCfg(pc.Kind, c)
		idx[pc.Kind] = len(phases)
		phases = append(phases, compiledPhase{kind: pc.Kind, cfg: c, eng: newEngine(c), cm: cmFor(c.CM)})
	}
	return phases, idx
}

func validatePhaseCfg(kind string, c OptConfig) {
	if c.VerifyElision && !c.Counting {
		if kind == "" {
			panic("stm: VerifyElision requires Counting")
		}
		panic("stm: phase " + kind + ": VerifyElision requires Counting")
	}
	if !ValidCM(c.CM) {
		if kind == "" {
			panic("stm: unknown contention manager " + c.CM)
		}
		panic("stm: phase " + kind + ": unknown contention manager " + c.CM)
	}
}

// PhaseStats is one row of the per-phase statistics breakdown: the
// declared kind ("" for the default phase), the adaptive variant ("",
// for manual and default entries), the engine the entry compiled to,
// and the summed counters of every transaction threads ran on it. An
// adaptive kind reports one row per variant, so the engine trajectory
// (how much ran on the probe vs. the promoted fast path) is visible.
type PhaseStats struct {
	Kind    string
	Variant string
	Engine  string
	CM      string // active contention manager (live selection for adaptive kinds)
	Stats   Stats
}

// PhaseKinds returns the declared phase kinds in declaration order —
// manual kinds first, then adaptive ones, each listed once; the
// implicit default phase is not listed.
func (rt *Runtime) PhaseKinds() []string {
	return append([]string(nil), rt.kinds...)
}

// EngineFor names the barrier engine compiled for the given phase kind;
// "" names the default phase. An undeclared kind reports the default
// engine, mirroring EnterPhase's hint semantics. For an adaptive kind
// this follows the current selection.
func (rt *Runtime) EngineFor(kind string) string {
	return rt.phases[rt.phaseIndex(kind)].eng.name
}

func (rt *Runtime) phaseIndex(kind string) int {
	if i, ok := rt.phaseIdx[kind]; ok {
		if st := rt.adaptByIdx[i]; st != nil {
			return int(st.cur.Load())
		}
		return i
	}
	return 0
}

// PhaseStats sums every thread's counters by phase. Index 0 is the
// default phase; declared phases follow in declaration order. Like
// Stats, it must be read after worker threads have joined.
func (rt *Runtime) PhaseStats() []PhaseStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]PhaseStats, len(rt.phases))
	for i, p := range rt.phases {
		out[i] = PhaseStats{Kind: p.kind, Variant: p.variant, Engine: p.eng.name, CM: rt.cmAt(i).name}
	}
	for _, th := range rt.threads {
		for i := range th.phaseStats {
			out[i].Stats.Add(&th.phaseStats[i])
		}
	}
	return out
}

// EnterPhase hints that this thread's upcoming transactions belong to
// the given declared phase kind, switching the thread onto that phase's
// compiled barrier engine. The hint is free to give unconditionally: a
// kind the Runtime did not declare selects the default phase, so
// workloads tag their operations once and profiles opt in with
// OptConfig.Phases. Called inside a transaction, the switch is deferred
// until the enclosing top-level transaction (and any retries of it) has
// ended — engines never change mid-transaction.
func (th *Thread) EnterPhase(kind string) {
	idx := th.rt.phaseIndex(kind)
	if th.tx.active {
		th.pendingPhase = idx
		return
	}
	th.setPhase(idx)
}

// Phase returns the kind of the phase the thread currently executes in
// ("" for the default phase). A deferred switch is not yet visible.
func (th *Thread) Phase() string { return th.rt.phases[th.phase].kind }

// setPhase applies a phase switch: the statistics accumulator, the
// contention manager, and the transaction descriptor's compiled engine
// all move to the new phase. It must only run between transactions.
// The manager is refreshed even when the entry is unchanged — for an
// adaptive kind the manager selection can move while the engine entry
// stays put (adaptive.go).
func (th *Thread) setPhase(idx int) {
	th.pendingPhase = -1
	th.cm = th.rt.cmAt(idx)
	if th.phase == idx {
		return
	}
	th.phase = idx
	th.stats = &th.phaseStats[idx]
	th.tx.applyPhase(idx)
}
