package tm

import (
	"errors"
	"fmt"

	"repro/internal/stm"
)

// Snapshot is the consolidated observability view of a Runtime: one
// struct instead of the former getter trio (Stats, PhaseStats,
// AdaptiveSelections). Take it after worker threads have joined.
type Snapshot struct {
	// Engine names the compiled barrier engine (with "+phases" /
	// "+adaptive" markers when those features are on).
	Engine string
	// Stats sums every thread's counters across all phases.
	Stats Stats
	// Phases is the per-phase breakdown: index 0 is the default phase,
	// declared phases follow in declaration order. Always at least one
	// row.
	Phases []PhaseStats
	// Adaptive reports the current engine selection of every adaptively
	// managed phase kind (empty without WithAdaptive).
	Adaptive []AdaptiveSelection
	// Durability carries the redo-log and checkpoint counters, nil when
	// the runtime was opened without WithDurability.
	Durability *DurabilityStats
}

// DurabilityStats flattens the redo-log and checkpoint-store counters.
type DurabilityStats struct {
	Records  uint64 // redo records appended
	LogBytes uint64 // log bytes appended
	Batches  uint64 // group-commit write batches
	Fsyncs   uint64 // fsync calls on log segments
	Segments uint64 // log segment files created

	Checkpoints   uint64 // checkpoints written
	ChunksWritten uint64 // content-addressed chunks appended to packs
	ChunksDeduped uint64 // chunks skipped because their score was stored
	PackBytes     uint64 // pack bytes appended
}

// Snapshot returns the consolidated observability view.
func (rt *Runtime) Snapshot() Snapshot {
	return Snapshot{
		Engine:     rt.rt.Engine(),
		Stats:      rt.rt.Stats(),
		Phases:     rt.rt.PhaseStats(),
		Adaptive:   rt.rt.AdaptiveSelections(),
		Durability: rt.durabilityStats(),
	}
}

// conflicts reports the option combinations Open resolves by silent
// precedence. Each check runs on the base configuration and on every
// phase fragment's compiled configuration, since a fragment can
// introduce the same clash.
func (s *settings) conflicts() error {
	var errs []error
	check := func(where string, cfg *stm.OptConfig) {
		ctx := ""
		if where != "" {
			ctx = fmt.Sprintf(" (phase %q)", where)
		}
		if cfg.ReadMostly && (cfg.Counting || cfg.VerifyElision) {
			errs = append(errs, fmt.Errorf("tm: WithReadMostly is dropped under WithCounting/WithVerifyElision, whose oracles need the instrumented chain%s", ctx))
		}
		if cfg.Counting && cfg.PerfMode && !cfg.VerifyElision {
			errs = append(errs, fmt.Errorf("tm: WithCounting classification is disabled by WithPerfMode (the counters live in the instrumented chain)%s", ctx))
		}
		if !stm.ValidCM(cfg.CM) {
			errs = append(errs, fmt.Errorf("tm: WithContention(%q) names no contention manager (want backoff, none, or queue)%s", cfg.CM, ctx))
		}
	}
	check("", &s.cfg)
	declared := make(map[string]bool, len(s.cfg.Phases))
	for i := range s.cfg.Phases {
		ph := &s.cfg.Phases[i]
		declared[ph.Kind] = true
		check(ph.Kind, &ph.Cfg)
	}
	if s.cfg.Adaptive.Enabled {
		for _, k := range s.cfg.Adaptive.Kinds {
			if declared[k] {
				errs = append(errs, fmt.Errorf("tm: adaptive kind %q is shadowed by an explicit WithPhases declaration (manual hints stay ground truth)", k))
			}
		}
	}
	return errors.Join(errs...)
}
