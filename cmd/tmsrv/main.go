// Command tmsrv measures the serving front-end (tm/serve): an
// open-loop Poisson client population offers load to a worker pool
// that merges compatible requests into single transactions
// (application-side transaction merging), and the harness reports the
// service-time distribution — p50/p95/p99 and achieved requests/sec —
// for every point of a merge-width × worker-count × offered-load
// sweep.
//
// Merging amortizes per-transaction commit work across requests and
// assembles all replies in one captured stack block, whose writes the
// runtime elides (the paper's captured-memory analysis); run with
// -stats to keep the elision counters on and see WriteElStack move
// with the merge ratio.
//
// Usage:
//
//	tmsrv -list                              # registered backends
//	tmsrv -backend srv-tmkv                  # default sweep, human table
//	tmsrv -backend srv-tmkv-read -adaptive   # scan-phased read mix: +phases
//	                                         # arm batches onto the
//	                                         # read-mostly engine
//	tmsrv -backend all -mergewidths 1,4,8 -rates 100000,peak
//	tmsrv -workers 1,4 -requests 8192 -stats # counters on (non-perf build)
//	tmsrv -format json -o BENCH_sweep_latency.json
//	tmsrv -adaptive -backend srv-tmmsg -o BENCH_sweep_adaptive.json
//	tmsrv -backend srv-tmmsg -cm all -mergewidths 1,8  # p95/p99 per
//	                                         # contention manager,
//	                                         # merged and unmerged
//
// -adaptive replaces the merge-width grid with a four-arm A/B at every
// backend × workers × rate point: unmerged single-engine (mw1), fixed
// merge width W = max(-mergewidths) single-engine (mwW), fixed width
// with the hand-tuned per-phase engine declaration (+phases), and full
// adaptation (+adaptive/amwW: online per-phase engine selection plus
// adaptive merge width up to W).
//
// JSON output is the diffable repro/bench-report/v1 report of
// tm/bench.WriteJSON: each sweep point is one result row whose config
// string encodes profile, merge width, and offered load ("peak" =
// unpaced), with the open-loop block under "latency" — cmd/benchdiff
// gates on its p95/p99 like it gates throughput minima.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/tm"
	"repro/tm/bench"
	"repro/tm/serve"

	_ "repro/internal/scenarios/tmkv"
	_ "repro/internal/scenarios/tmmsg"
)

func main() {
	list := flag.Bool("list", false, "list registered serve backends and exit")
	backendFlag := flag.String("backend", "all", "comma-separated serve backend names or 'all'")
	profileFlag := flag.String("profile", "runtime", "optimization profile: baseline|runtime|compiler")
	stats := flag.Bool("stats", false, "keep per-access counters on (skip perf mode) so the report's elision counters are populated")
	workersFlag := flag.String("workers", "", "comma-separated worker-pool sizes (default: machine-sized)")
	widthsFlag := flag.String("mergewidths", "1,4,8", "comma-separated merge widths (1 = no merging)")
	ratesFlag := flag.String("rates", "peak", "comma-separated offered loads in requests/sec; 'peak' or 0 = unpaced")
	requests := flag.Int("requests", 1<<14, "requests per sweep point")
	clients := flag.Int("clients", 8, "open-loop client goroutines")
	seed := flag.Uint64("seed", 1, "seed for interarrivals and the request stream")
	cmFlag := flag.String("cm", "", "comma-separated contention managers (backoff|none|queue) to run as arms at every sweep point; 'all' = every manager, empty = the profile default")
	adaptive := flag.Bool("adaptive", false, "run the adaptive A/B sweep (mw1 vs mwW vs +phases vs +adaptive, W = max of -mergewidths) instead of the plain width grid")
	adaptEpoch := flag.Int("adaptepoch", 0, "adaptive engine-selection sampling window in commits (0 = runtime default)")
	format := flag.String("format", "text", "output format: text|json")
	out := flag.String("o", "", "write output to this file instead of stdout")
	flag.Usage = usage
	flag.Parse()

	if *list {
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		for _, b := range serve.Backends() {
			fmt.Fprintf(tw, "%s\t%s\n", b, serve.Description(b))
		}
		tw.Flush()
		return
	}

	backends := serve.Backends()
	if *backendFlag != "all" {
		backends = strings.Split(*backendFlag, ",")
	}
	profile, err := profileFor(*profileFlag, *stats)
	if err == nil && *format != "text" && *format != "json" {
		err = fmt.Errorf("unknown format %q", *format)
	}
	var workers, widths []int
	var rates []float64
	if err == nil {
		workers, err = parseInts(*workersFlag, "workers")
	}
	if err == nil {
		widths, err = parseInts(*widthsFlag, "mergewidths")
	}
	if err == nil {
		rates, err = parseRates(*ratesFlag)
	}
	var cms []tm.CM
	if err == nil {
		cms, err = parseCMs(*cmFlag)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmsrv:", err)
		os.Exit(1)
	}
	if len(workers) == 0 {
		workers = bench.DefaultThreadCounts()
	}

	w := io.Writer(os.Stdout)
	var outFile *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tmsrv:", err)
			os.Exit(1)
		}
		outFile = f
		w = f
	}

	if *adaptive {
		err = sweepAdaptive(w, backends, profile, workers, maxInt(widths), rates, cms, *requests, *clients, *seed, *adaptEpoch, *format == "json")
	} else {
		err = sweep(w, backends, profile, workers, widths, rates, cms, *requests, *clients, *seed, *format == "json")
	}
	// A failed flush at close must fail the run: CI diffs the written
	// report, and a silently truncated artifact would pass as baseline.
	if outFile != nil {
		if cerr := outFile.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmsrv:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(),
		`tmsrv: open-loop latency sweeps over the served transactional backends.

An open-loop Poisson client population offers load to a worker pool
that merges compatible requests into single transactions; each sweep
point (backend x workers x merge width x offered load) reports
p50/p95/p99 service time, achieved requests/sec, and the merge and
elision counters that explain them. Latency is measured from each
request's *scheduled* arrival, so queueing delay behind a stall is
charged, never omitted.

Registered backends (tmsrv -list for descriptions):
`)
	for _, b := range serve.Backends() {
		fmt.Fprintf(flag.CommandLine.Output(), "  %s\n", b)
	}
	fmt.Fprintf(flag.CommandLine.Output(), "\nFlags:\n")
	flag.PrintDefaults()
}

func profileFor(name string, stats bool) (tm.Profile, error) {
	var p tm.Profile
	switch name {
	case "baseline":
		p = tm.Baseline()
	case "runtime":
		p = tm.RuntimeAll(tm.LogTree)
	case "compiler":
		p = tm.CompilerElision()
	default:
		return tm.Profile{}, fmt.Errorf("unknown profile %q (want baseline|runtime|compiler)", name)
	}
	if !stats {
		p = p.Perf()
	}
	return p, nil
}

func parseInts(s, what string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -%s entry %q", what, part)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "peak" {
			out = append(out, 0)
			continue
		}
		r, err := strconv.ParseFloat(part, 64)
		if err != nil || r < 0 {
			return nil, fmt.Errorf("bad -rates entry %q (want a rate in req/s or 'peak')", part)
		}
		out = append(out, r)
	}
	return out, nil
}

// parseCMs resolves the -cm flag into the contention-manager arms of
// the sweep. The empty string is one arm on the profile's default
// manager; "all" is one arm per manager, so a single report carries
// every side of the waiting-policy A/B.
func parseCMs(s string) ([]tm.CM, error) {
	if s == "" {
		return []tm.CM{""}, nil
	}
	if s == "all" {
		return []tm.CM{tm.CMBackoff, tm.CMNone, tm.CMQueue}, nil
	}
	var out []tm.CM
	for _, part := range strings.Split(s, ",") {
		switch m := tm.CM(strings.TrimSpace(part)); m {
		case tm.CMBackoff, tm.CMNone, tm.CMQueue:
			out = append(out, m)
		default:
			return nil, fmt.Errorf("bad -cm entry %q (want backoff, none, or queue)", part)
		}
	}
	return out, nil
}

// sweep measures every point of the grid and writes the latency table
// or the diffable JSON report.
func sweep(w io.Writer, backends []string, p tm.Profile, workers, widths []int, rates []float64, cms []tm.CM, requests, clients int, seed uint64, asJSON bool) error {
	var all []bench.Result
	for _, be := range backends {
		for _, nw := range workers {
			for _, mw := range widths {
				for _, rate := range rates {
					for _, cm := range cms {
						res, err := bench.RunOpenLoop(bench.OpenLoopSpec{
							Backend:    be,
							Profile:    p,
							Workers:    nw,
							MergeWidth: mw,
							Clients:    clients,
							Rate:       rate,
							Requests:   requests,
							Seed:       seed,
							CM:         cm,
						})
						if err != nil {
							return err
						}
						all = append(all, res)
					}
				}
			}
		}
	}
	if asJSON {
		return bench.WriteJSON(w, bench.NewReport(all))
	}
	bench.WriteLatencyTable(w, all)
	return nil
}

func maxInt(xs []int) int {
	m := 1
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// sweepAdaptive measures the adaptive A/B grid: at every backend ×
// workers × rate point, four arms — unmerged single-engine, fixed
// merge width W single-engine, fixed width under the hand-tuned
// per-phase declaration, and full adaptation (online engine selection
// plus adaptive merge width up to W). The arms share the request
// stream and seed, so their rows differ only in the machinery under
// test.
func sweepAdaptive(w io.Writer, backends []string, p tm.Profile, workers []int, width int, rates []float64, cms []tm.CM, requests, clients int, seed uint64, epoch int, asJSON bool) error {
	arms := []bench.OpenLoopSpec{
		{MergeWidth: 1},
		{MergeWidth: width},
		{MergeWidth: width, Phases: true},
		{MergeWidth: width, Adaptive: true, AdaptiveEpoch: epoch},
	}
	var all []bench.Result
	for _, be := range backends {
		for _, nw := range workers {
			for _, rate := range rates {
				for _, cm := range cms {
					for _, arm := range arms {
						spec := arm
						spec.Backend, spec.Profile, spec.Workers = be, p, nw
						spec.Clients, spec.Rate, spec.CM = clients, rate, cm
						spec.Requests, spec.Seed = requests, seed
						res, err := bench.RunOpenLoop(spec)
						if err != nil {
							return err
						}
						all = append(all, res)
					}
				}
			}
		}
	}
	if asJSON {
		return bench.WriteJSON(w, bench.NewReport(all))
	}
	bench.WriteLatencyTable(w, all)
	return nil
}
