package txlib

import (
	"repro/internal/mem"
	"repro/internal/stm"
)

// Map is an ordered map from uint64 keys to one data word, implemented
// as an AVL tree in simulated memory. STAMP's MAP_T is a red-black
// tree; an AVL tree has the same O(log n) pointer-chasing access
// pattern and rebalancing writes, which is what the barrier-mix
// experiments depend on (the substitution is recorded in DESIGN.md).
//
// Layout:
//
//	header: [0] root  [1] size
//	node:   [0] key  [1] val  [2] left  [3] right  [4] height
const (
	mapRoot = 0
	mapSize = 1
	mapHdr  = 2

	mnKey    = 0
	mnVal    = 1
	mnLeft   = 2
	mnRight  = 3
	mnHeight = 4
	mnSize   = 5
)

// NewMap allocates an empty map inside the transaction.
func NewMap(tx *stm.Tx) mem.Addr {
	m := tx.Alloc(mapHdr)
	tx.Store(m+mapRoot, 0, stm.AccFresh)
	tx.Store(m+mapSize, 0, stm.AccFresh)
	return m
}

// MapSize returns the number of entries.
func MapSize(tx *stm.Tx, m mem.Addr, mode stm.Acc) int {
	return int(tx.Load(m+mapSize, mode))
}

func mheight(tx *stm.Tx, n mem.Addr, mode stm.Acc) int64 {
	if n == mem.Nil {
		return 0
	}
	return int64(tx.Load(n+mnHeight, mode))
}

func mfix(tx *stm.Tx, n mem.Addr, mode stm.Acc) mem.Addr {
	l := tx.LoadAddr(n+mnLeft, mode)
	r := tx.LoadAddr(n+mnRight, mode)
	hl, hr := mheight(tx, l, mode), mheight(tx, r, mode)
	h := hl
	if hr > h {
		h = hr
	}
	// Store only when the height actually changes: rebalancing writes
	// are O(1) amortized, like STAMP's red-black tree.
	if int64(tx.Load(n+mnHeight, mode)) != h+1 {
		tx.Store(n+mnHeight, uint64(h+1), mode)
	}
	switch bal := hl - hr; {
	case bal > 1:
		ll := tx.LoadAddr(l+mnLeft, mode)
		lr := tx.LoadAddr(l+mnRight, mode)
		if mheight(tx, ll, mode) < mheight(tx, lr, mode) {
			tx.StoreAddr(n+mnLeft, mrotL(tx, l, mode), mode)
		}
		return mrotR(tx, n, mode)
	case bal < -1:
		rl := tx.LoadAddr(r+mnLeft, mode)
		rr := tx.LoadAddr(r+mnRight, mode)
		if mheight(tx, rr, mode) < mheight(tx, rl, mode) {
			tx.StoreAddr(n+mnRight, mrotR(tx, r, mode), mode)
		}
		return mrotL(tx, n, mode)
	}
	return n
}

func mrefresh(tx *stm.Tx, n mem.Addr, mode stm.Acc) {
	hl := mheight(tx, tx.LoadAddr(n+mnLeft, mode), mode)
	hr := mheight(tx, tx.LoadAddr(n+mnRight, mode), mode)
	if hr > hl {
		hl = hr
	}
	if tx.Load(n+mnHeight, mode) != uint64(hl+1) {
		tx.Store(n+mnHeight, uint64(hl+1), mode)
	}
}

func mrotR(tx *stm.Tx, n mem.Addr, mode stm.Acc) mem.Addr {
	l := tx.LoadAddr(n+mnLeft, mode)
	tx.StoreAddr(n+mnLeft, tx.LoadAddr(l+mnRight, mode), mode)
	tx.StoreAddr(l+mnRight, n, mode)
	mrefresh(tx, n, mode)
	mrefresh(tx, l, mode)
	return l
}

func mrotL(tx *stm.Tx, n mem.Addr, mode stm.Acc) mem.Addr {
	r := tx.LoadAddr(n+mnRight, mode)
	tx.StoreAddr(n+mnRight, tx.LoadAddr(r+mnLeft, mode), mode)
	tx.StoreAddr(r+mnLeft, n, mode)
	mrefresh(tx, n, mode)
	mrefresh(tx, r, mode)
	return r
}

// MapInsert inserts key→val. It returns false (and leaves the map
// unchanged) if the key is already present.
func MapInsert(tx *stm.Tx, m mem.Addr, key, val uint64, mode stm.Acc) bool {
	root := tx.LoadAddr(m+mapRoot, mode)
	newRoot, inserted := mapInsert(tx, root, key, val, mode)
	tx.StoreAddr(m+mapRoot, newRoot, mode)
	if inserted {
		tx.Store(m+mapSize, tx.Load(m+mapSize, mode)+1, mode)
	}
	return inserted
}

func mapInsert(tx *stm.Tx, n mem.Addr, key, val uint64, mode stm.Acc) (mem.Addr, bool) {
	if n == mem.Nil {
		nn := tx.Alloc(mnSize)
		tx.Store(nn+mnKey, key, stm.AccFresh)
		tx.Store(nn+mnVal, val, stm.AccFresh)
		tx.StoreAddr(nn+mnLeft, 0, stm.AccFresh)
		tx.StoreAddr(nn+mnRight, 0, stm.AccFresh)
		tx.Store(nn+mnHeight, 1, stm.AccFresh)
		return nn, true
	}
	k := tx.Load(n+mnKey, mode)
	switch {
	case key < k:
		old := tx.LoadAddr(n+mnLeft, mode)
		child, ins := mapInsert(tx, old, key, val, mode)
		if !ins {
			return n, false
		}
		if child != old {
			tx.StoreAddr(n+mnLeft, child, mode)
		}
		return mfix(tx, n, mode), true
	case key > k:
		old := tx.LoadAddr(n+mnRight, mode)
		child, ins := mapInsert(tx, old, key, val, mode)
		if !ins {
			return n, false
		}
		if child != old {
			tx.StoreAddr(n+mnRight, child, mode)
		}
		return mfix(tx, n, mode), true
	default:
		return n, false
	}
}

// MapGet returns the value stored under key.
func MapGet(tx *stm.Tx, m mem.Addr, key uint64, mode stm.Acc) (uint64, bool) {
	n := tx.LoadAddr(m+mapRoot, mode)
	for n != mem.Nil {
		k := tx.Load(n+mnKey, mode)
		switch {
		case key < k:
			n = tx.LoadAddr(n+mnLeft, mode)
		case key > k:
			n = tx.LoadAddr(n+mnRight, mode)
		default:
			return tx.Load(n+mnVal, mode), true
		}
	}
	return 0, false
}

// MapContains reports whether key is present.
func MapContains(tx *stm.Tx, m mem.Addr, key uint64, mode stm.Acc) bool {
	_, ok := MapGet(tx, m, key, mode)
	return ok
}

// MapSet updates the value under an existing key or inserts it.
func MapSet(tx *stm.Tx, m mem.Addr, key, val uint64, mode stm.Acc) {
	n := tx.LoadAddr(m+mapRoot, mode)
	for n != mem.Nil {
		k := tx.Load(n+mnKey, mode)
		switch {
		case key < k:
			n = tx.LoadAddr(n+mnLeft, mode)
		case key > k:
			n = tx.LoadAddr(n+mnRight, mode)
		default:
			tx.Store(n+mnVal, val, mode)
			return
		}
	}
	MapInsert(tx, m, key, val, mode)
}

// MapRemove deletes key, returning its value. The freed node is
// reclaimed transactionally.
func MapRemove(tx *stm.Tx, m mem.Addr, key uint64, mode stm.Acc) (uint64, bool) {
	root := tx.LoadAddr(m+mapRoot, mode)
	newRoot, val, removed := mapRemove(tx, root, key, mode)
	tx.StoreAddr(m+mapRoot, newRoot, mode)
	if removed {
		tx.Store(m+mapSize, tx.Load(m+mapSize, mode)-1, mode)
	}
	return val, removed
}

func mapRemove(tx *stm.Tx, n mem.Addr, key uint64, mode stm.Acc) (mem.Addr, uint64, bool) {
	if n == mem.Nil {
		return mem.Nil, 0, false
	}
	k := tx.Load(n+mnKey, mode)
	switch {
	case key < k:
		old := tx.LoadAddr(n+mnLeft, mode)
		child, val, rem := mapRemove(tx, old, key, mode)
		if !rem {
			return n, 0, false
		}
		if child != old {
			tx.StoreAddr(n+mnLeft, child, mode)
		}
		return mfix(tx, n, mode), val, true
	case key > k:
		old := tx.LoadAddr(n+mnRight, mode)
		child, val, rem := mapRemove(tx, old, key, mode)
		if !rem {
			return n, 0, false
		}
		if child != old {
			tx.StoreAddr(n+mnRight, child, mode)
		}
		return mfix(tx, n, mode), val, true
	}
	val := tx.Load(n+mnVal, mode)
	l := tx.LoadAddr(n+mnLeft, mode)
	r := tx.LoadAddr(n+mnRight, mode)
	if l == mem.Nil {
		tx.Free(n)
		return r, val, true
	}
	if r == mem.Nil {
		tx.Free(n)
		return l, val, true
	}
	// Two children: replace with in-order successor.
	sk, sv := mapMin(tx, r, mode)
	tx.Store(n+mnKey, sk, mode)
	tx.Store(n+mnVal, sv, mode)
	child, _, _ := mapRemove(tx, r, sk, mode)
	tx.StoreAddr(n+mnRight, child, mode)
	return mfix(tx, n, mode), val, true
}

func mapMin(tx *stm.Tx, n mem.Addr, mode stm.Acc) (key, val uint64) {
	for {
		l := tx.LoadAddr(n+mnLeft, mode)
		if l == mem.Nil {
			return tx.Load(n+mnKey, mode), tx.Load(n+mnVal, mode)
		}
		n = l
	}
}

// MapForEach visits entries in key order. fn returns false to stop.
func MapForEach(tx *stm.Tx, m mem.Addr, mode stm.Acc, fn func(key, val uint64) bool) {
	var walk func(n mem.Addr) bool
	walk = func(n mem.Addr) bool {
		if n == mem.Nil {
			return true
		}
		if !walk(tx.LoadAddr(n+mnLeft, mode)) {
			return false
		}
		if !fn(tx.Load(n+mnKey, mode), tx.Load(n+mnVal, mode)) {
			return false
		}
		return walk(tx.LoadAddr(n+mnRight, mode))
	}
	walk(tx.LoadAddr(m+mapRoot, mode))
}

// MapFree frees every node and the header.
func MapFree(tx *stm.Tx, m mem.Addr, mode stm.Acc) {
	var walk func(n mem.Addr)
	walk = func(n mem.Addr) {
		if n == mem.Nil {
			return
		}
		walk(tx.LoadAddr(n+mnLeft, mode))
		walk(tx.LoadAddr(n+mnRight, mode))
		tx.Free(n)
	}
	walk(tx.LoadAddr(m+mapRoot, mode))
	tx.Free(m)
}
